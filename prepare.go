package panda

import (
	"math/big"

	"panda/internal/core"
	"panda/internal/flow"
	"panda/internal/plan"
)

// Prepared-query support: the data-independent planning phase (exact LP
// solves, proof-sequence construction, tree-decomposition choice) runs once
// in Prepare and is reified as a plan; Eval then runs only the
// data-dependent phase. A Planner caches plans in a concurrency-safe LRU
// keyed by a canonical signature of (query shape, free variables,
// constraint set), so repeated traffic — including queries that are mere
// variable renamings of earlier ones — skips planning entirely.

// QueryPlan is a reified query plan: tree decomposition(s), per-bag
// fractional edge covers, PANDA proof sequences, and an exact width
// certificate.
type QueryPlan = plan.Plan

// RulePlan is the reified planning output for a single disjunctive rule.
type RulePlan = plan.PreparedRule

// PlanCover is an exact fractional edge cover of one plan bag.
type PlanCover = plan.Cover

// PlanMode selects the evaluation strategy a plan encodes.
type PlanMode = plan.Mode

// Plan modes.
const (
	ModeAuto = plan.ModeAuto // ModeFull for full queries, ModeSubw otherwise
	ModeFull = plan.ModeFull // PANDA + semijoin reduction (Corollary 7.10)
	ModeFhtw = plan.ModeFhtw // fractional-hypertree-width plan (Corollary 7.11)
	ModeSubw = plan.ModeSubw // submodular-width plan (Theorem 1.9)
)

// PlannerStats snapshots a Planner's cache and planning counters.
type PlannerStats = plan.Stats

// ProofStep is one weighted Shannon-flow proof step (Definition 5.7).
type ProofStep = flow.Step

// Proof-step kinds (rules 13–16 of the paper).
const (
	StepSubmodularity = flow.Submodularity
	StepMonotonicity  = flow.Monotonicity
	StepComposition   = flow.Composition
	StepDecomposition = flow.Decomposition
)

// Planner prepares query plans through a concurrency-safe LRU plan cache.
// The zero capacity selects plan.DefaultCacheSize.
type Planner struct {
	inner *plan.Planner
}

// NewPlanner returns a Planner holding up to capacity cached plans.
func NewPlanner(capacity int) *Planner {
	return &Planner{inner: plan.NewPlanner(capacity)}
}

// Prepare runs the planning phase for q under a complete constraint set:
// every constraint guarded and every atom carrying a cardinality constraint
// (use PrepareFor to derive missing cardinalities from an instance). The
// result can be evaluated against any instance satisfying the constraints.
func (pl *Planner) Prepare(q *Query, dcs []Constraint) (*PreparedQuery, error) {
	return pl.PrepareMode(q, dcs, ModeAuto)
}

// PrepareMode is Prepare with an explicit strategy choice.
func (pl *Planner) PrepareMode(q *Query, dcs []Constraint, mode PlanMode) (*PreparedQuery, error) {
	p, err := pl.inner.Prepare(q, dcs, mode)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// PrepareFor completes dcs with the instance's atom cardinalities before
// planning, mirroring what Eval/EvalFhtw/EvalSubw do internally.
func (pl *Planner) PrepareFor(q *Query, ins *Instance, dcs []Constraint) (*PreparedQuery, error) {
	return pl.PrepareMode(q, core.CompleteConstraints(&q.Schema, ins, dcs), ModeAuto)
}

// PrepareForMode is PrepareFor with an explicit strategy choice.
func (pl *Planner) PrepareForMode(q *Query, ins *Instance, dcs []Constraint, mode PlanMode) (*PreparedQuery, error) {
	return pl.PrepareMode(q, core.CompleteConstraints(&q.Schema, ins, dcs), mode)
}

// Stats returns the planner's hit/miss/eviction/LP counters.
func (pl *Planner) Stats() PlannerStats { return pl.inner.Stats() }

// PreparedQuery is a query whose planning phase has already run; Eval
// executes only the data-dependent part. Safe for concurrent Eval calls.
type PreparedQuery struct {
	p *plan.Plan
}

// Eval runs the prepared plan over an instance. The relation is nil for
// Boolean queries; the bool answers non-emptiness in every case. Proper
// projection queries are projected onto their free variables, matching the
// one-shot Eval dispatch.
func (pq *PreparedQuery) Eval(ins *Instance, opt Options) (*Relation, bool, *Stats, error) {
	ex, err := core.Execute(pq.p, ins, opt)
	if err != nil {
		return nil, false, nil, err
	}
	out := ex.Out
	if out != nil && pq.p.Free != 0 && pq.p.Free != out.Attrs() {
		out = out.Project(pq.p.Free)
	}
	return out, ex.NonEmpty, ex.Stats, nil
}

// Plan exposes the reified plan for introspection.
func (pq *PreparedQuery) Plan() *QueryPlan { return pq.p }

// Width is the plan's exact width certificate in log₂ units: the
// polymatroid bound (ModeFull), da-fhtw (ModeFhtw) or da-subw (ModeSubw).
func (pq *PreparedQuery) Width() *big.Rat { return pq.p.Width }

// Signature is the canonical cache key of the plan.
func (pq *PreparedQuery) Signature() string { return pq.p.Key }

// Mode reports the strategy the plan encodes.
func (pq *PreparedQuery) Mode() PlanMode { return pq.p.Mode }

// Covers computes the plan's per-bag fractional edge covers on demand
// (execution never needs them; they document the AGM-style certificate of
// each bag).
func (pq *PreparedQuery) Covers() ([]PlanCover, error) { return pq.p.Covers() }

// defaultPlanner backs the package-level Prepare helpers.
var defaultPlanner = NewPlanner(0)

// Prepare plans q with the process-wide default planner (shared LRU cache).
func Prepare(q *Query, dcs []Constraint) (*PreparedQuery, error) {
	return defaultPlanner.Prepare(q, dcs)
}

// PrepareFor plans q with the default planner, deriving missing atom
// cardinalities from the instance.
func PrepareFor(q *Query, ins *Instance, dcs []Constraint) (*PreparedQuery, error) {
	return defaultPlanner.PrepareFor(q, ins, dcs)
}

// PrepareRule runs the planning phase for a disjunctive rule: the
// polymatroid-bound LP and the Theorem 5.9 proof sequence. The constraint
// set must be complete (see Planner.Prepare).
func PrepareRule(p *Rule, dcs []Constraint) (*RulePlan, error) {
	pr, _, err := plan.PrepareRule(&p.Schema, dcs, p.Targets)
	return pr, err
}

// CompleteConstraints appends each atom's instance cardinality to dcs when
// missing, producing the complete constraint set the planner needs.
func CompleteConstraints(s *Schema, ins *Instance, dcs []Constraint) []Constraint {
	return core.CompleteConstraints(s, ins, dcs)
}
