package panda

import (
	"context"
	"io"
	"math/big"
	"sync"

	"panda/internal/core"
	"panda/internal/flow"
	"panda/internal/plan"
)

// Prepared-query support: the data-independent planning phase (exact LP
// solves, proof-sequence construction, tree-decomposition choice) runs once
// in Prepare and is reified as a plan; Eval then runs only the
// data-dependent phase. A Planner caches plans in a concurrency-safe LRU
// keyed by a canonical signature of (query shape, free variables,
// constraint set), so repeated traffic — including queries that are mere
// variable renamings of earlier ones — skips planning entirely.

// QueryPlan is a reified query plan: tree decomposition(s), per-bag
// fractional edge covers, PANDA proof sequences, and an exact width
// certificate.
type QueryPlan = plan.Plan

// RulePlan is the reified planning output for a single disjunctive rule.
type RulePlan = plan.PreparedRule

// PlanCover is an exact fractional edge cover of one plan bag.
type PlanCover = plan.Cover

// PlanMode selects the evaluation strategy a plan encodes.
type PlanMode = plan.Mode

// Plan modes.
const (
	ModeAuto = plan.ModeAuto // cost-based: ModeFull for full queries; else the smaller of the fhtw/subw certificates
	ModeFull = plan.ModeFull // PANDA + semijoin reduction (Corollary 7.10)
	ModeFhtw = plan.ModeFhtw // fractional-hypertree-width plan (Corollary 7.11)
	ModeSubw = plan.ModeSubw // submodular-width plan (Theorem 1.9)
)

// PlannerStats snapshots a Planner's cache and planning counters.
type PlannerStats = plan.Stats

// PlanCacheLoadStats reports what a plan-cache import did: entries loaded,
// entries skipped, and the first rejection reason (dispatch on it with
// errors.Is against ErrPlanVersion / ErrPlanDigest).
type PlanCacheLoadStats = plan.CacheLoadStats

// PlanFormatVersion is the wire-format version of encoded plans and plan-
// cache snapshots; decoders reject other versions.
const PlanFormatVersion = plan.FormatVersion

// ProofStep is one weighted Shannon-flow proof step (Definition 5.7).
type ProofStep = flow.Step

// Proof-step kinds (rules 13–16 of the paper).
const (
	StepSubmodularity = flow.Submodularity
	StepMonotonicity  = flow.Monotonicity
	StepComposition   = flow.Composition
	StepDecomposition = flow.Decomposition
)

// Planner prepares query plans through a concurrency-safe LRU plan cache.
// The zero capacity selects plan.DefaultCacheSize.
type Planner struct {
	inner *plan.Planner
}

// NewPlanner returns a Planner holding up to capacity cached plans.
func NewPlanner(capacity int) *Planner {
	return &Planner{inner: plan.NewPlanner(capacity)}
}

// Prepare runs the planning phase for q under a complete constraint set:
// every constraint guarded and every atom carrying a cardinality constraint
// (use PrepareFor to derive missing cardinalities from an instance). The
// result can be evaluated against any instance satisfying the constraints.
func (pl *Planner) Prepare(q *Query, dcs []Constraint) (*PreparedQuery, error) {
	return pl.PrepareMode(q, dcs, ModeAuto)
}

// PrepareMode is Prepare with an explicit strategy choice.
func (pl *Planner) PrepareMode(q *Query, dcs []Constraint, mode PlanMode) (*PreparedQuery, error) {
	return pl.PrepareModeContext(context.Background(), q, dcs, mode)
}

// PrepareModeContext is PrepareMode honoring ctx: a cache miss threads the
// context into the planning phase, whose LP solves check cancellation, so
// an expired deadline aborts planning promptly with ctx.Err().
func (pl *Planner) PrepareModeContext(ctx context.Context, q *Query, dcs []Constraint, mode PlanMode) (*PreparedQuery, error) {
	p, err := pl.inner.PrepareContext(ctx, q, dcs, mode)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{p: p}, nil
}

// PrepareFor completes dcs with the instance's atom cardinalities before
// planning, mirroring what Eval/EvalFhtw/EvalSubw do internally.
func (pl *Planner) PrepareFor(q *Query, ins *Instance, dcs []Constraint) (*PreparedQuery, error) {
	return pl.PrepareMode(q, core.CompleteConstraints(&q.Schema, ins, dcs), ModeAuto)
}

// PrepareForMode is PrepareFor with an explicit strategy choice.
func (pl *Planner) PrepareForMode(q *Query, ins *Instance, dcs []Constraint, mode PlanMode) (*PreparedQuery, error) {
	return pl.PrepareMode(q, core.CompleteConstraints(&q.Schema, ins, dcs), mode)
}

// Stats returns the planner's hit/miss/eviction/LP counters.
func (pl *Planner) Stats() PlannerStats { return pl.inner.Stats() }

// Len reports how many plans the cache currently holds.
func (pl *Planner) Len() int { return pl.inner.Len() }

// SaveCache writes every cached plan to w (most recently used first) in the
// versioned, digested panda-plan-cache format; LoadCache on another Planner
// — typically in a restarted or replica process — re-seeds its cache so
// previously planned queries are answered with zero LP solves.
func (pl *Planner) SaveCache(w io.Writer) error { return pl.inner.SaveCache(w) }

// SaveCacheSince writes only the plans installed after the given cache
// clock (a full snapshot when since = 0); the envelope records the clock
// the selection was made at, so a consumer importing successive deltas and
// remembering each envelope's clock sees every entry exactly once. This is
// the incremental seam the fleet push loop rides.
func (pl *Planner) SaveCacheSince(w io.Writer, since uint64) error {
	return pl.inner.SaveCacheSince(w, since)
}

// CacheClock reports the planner's cache clock: a monotone count of entry
// installs (fresh builds plus imports). It never moves backwards, so it is
// safe to use as a remote delta watermark.
func (pl *Planner) CacheClock() uint64 { return pl.inner.CacheClock() }

// LoadCache reads a panda-plan-cache snapshot from r. Individual entries
// are skipped (never fatal) on a format-version or digest mismatch or a
// malformed payload, and keys the cache already holds count as benign
// duplicates; the returned stats say what happened. Loaded entries keep
// their recorded LP build cost, so cache hits on them credit LPSolvesSaved
// exactly as in the donor process.
func (pl *Planner) LoadCache(r io.Reader) (PlanCacheLoadStats, error) {
	return pl.inner.LoadCache(r)
}

// PreparedQuery is a query whose planning phase has already run; Eval
// executes only the data-dependent part. Safe for concurrent Eval calls.
type PreparedQuery struct {
	p *plan.Plan
}

// Eval runs the prepared plan over an instance. The relation is nil for
// Boolean queries; the bool answers non-emptiness in every case. Proper
// projection queries are projected onto their free variables, matching the
// one-shot Eval dispatch.
func (pq *PreparedQuery) Eval(ins *Instance, opt Options) (*Relation, bool, *Stats, error) {
	return pq.EvalContext(context.Background(), ins, opt)
}

// EvalContext is Eval honoring ctx: the engine checks cancellation between
// proof steps, so a cancelled or expired context aborts the run promptly
// with ctx.Err(). Callers who also want parallel rule execution should run
// the query through a DB with WithParallelism — the session path shares
// this plan cache and adds the bounded worker pool.
func (pq *PreparedQuery) EvalContext(ctx context.Context, ins *Instance, opt Options) (*Relation, bool, *Stats, error) {
	exec := &core.Executor{Opt: opt}
	ex, err := exec.Execute(ctx, pq.p, ins)
	if err != nil {
		return nil, false, nil, err
	}
	return projectFree(ex.Out, pq.p.Free), ex.NonEmpty, ex.Stats, nil
}

// projectFree projects an execution output onto the query's free variables
// when it is a proper projection (non-full, non-Boolean); full and Boolean
// results pass through. Shared by PreparedQuery.Eval and the DB path so
// the two surfaces cannot diverge.
func projectFree(out *Relation, free Set) *Relation {
	if out != nil && free != 0 && free != out.Attrs() {
		return out.Project(free)
	}
	return out
}

// Plan exposes the reified plan for introspection.
func (pq *PreparedQuery) Plan() *QueryPlan { return pq.p }

// Width is the plan's exact width certificate in log₂ units: the
// polymatroid bound (ModeFull), da-fhtw (ModeFhtw) or da-subw (ModeSubw).
func (pq *PreparedQuery) Width() *big.Rat { return pq.p.Width }

// Signature is the canonical cache key of the plan.
func (pq *PreparedQuery) Signature() string { return pq.p.Key }

// Mode reports the strategy the plan encodes.
func (pq *PreparedQuery) Mode() PlanMode { return pq.p.Mode }

// Covers computes the plan's per-bag fractional edge covers on demand
// (execution never needs them; they document the AGM-style certificate of
// each bag).
func (pq *PreparedQuery) Covers() ([]PlanCover, error) { return pq.p.Covers() }

// The default planner: one process-wide plan cache backing the deprecated
// package-level helpers (Prepare, PrepareFor, Eval, EvalFull, EvalFhtw,
// EvalSubw, EvalRule). All of them share a single LRU — a plan prepared
// through any of these entry points is a cache hit for every other. A DB
// opened with Open does NOT share it: each session owns its own Planner
// (size it with WithPlannerCapacity). Long-lived processes that stay on
// the package-level helpers can size or reset the shared cache with
// SetDefaultPlannerCapacity and watch it with DefaultPlannerStats.
var (
	defaultMu      sync.Mutex
	defaultSession = newSession(NewPlanner(0))
)

// pkgDB returns the catalog-less session the deprecated package-level
// helpers run through.
func pkgDB() *DB {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultSession
}

// SetDefaultPlannerCapacity replaces the process-wide default planner with
// a fresh one holding up to capacity plans (0 selects the default
// capacity). Cached plans and counters are discarded; in-flight calls
// finish against the planner they started with.
func SetDefaultPlannerCapacity(capacity int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultSession = newSession(NewPlanner(capacity))
}

// DefaultPlannerStats snapshots the process-wide default planner's
// hit/miss/eviction/LP counters.
func DefaultPlannerStats() PlannerStats { return pkgDB().PlannerStats() }

// Prepare plans q with the process-wide default planner (shared LRU cache).
//
// Deprecated: open a DB and use DB.Prepare (textual queries) or
// DB.Planner().Prepare (programmatic queries) so the cache lifecycle is
// owned by a session instead of the process.
func Prepare(q *Query, dcs []Constraint) (*PreparedQuery, error) {
	return pkgDB().planner.Prepare(q, dcs)
}

// PrepareFor plans q with the default planner, deriving missing atom
// cardinalities from the instance.
//
// Deprecated: open a DB and use DB.Prepare or DB.Planner().PrepareFor.
func PrepareFor(q *Query, ins *Instance, dcs []Constraint) (*PreparedQuery, error) {
	return pkgDB().planner.PrepareFor(q, ins, dcs)
}

// PrepareRule runs the planning phase for a disjunctive rule: the
// polymatroid-bound LP and the Theorem 5.9 proof sequence. The constraint
// set must be complete (see Planner.Prepare).
func PrepareRule(p *Rule, dcs []Constraint) (*RulePlan, error) {
	pr, _, err := plan.PrepareRule(&p.Schema, dcs, p.Targets)
	return pr, err
}

// CompleteConstraints appends each atom's instance cardinality to dcs when
// missing, producing the complete constraint set the planner needs.
func CompleteConstraints(s *Schema, ins *Instance, dcs []Constraint) []Constraint {
	return core.CompleteConstraints(s, ins, dcs)
}

// DefaultCardinalities appends |R| ≤ n for every atom lacking a declared
// cardinality constraint, so data-independent planning (panda plan, Bounds)
// has a bounded LP even before any data exists. It returns the completed
// set and the names of the atoms the default was assumed for.
func DefaultCardinalities(s *Schema, dcs []Constraint, n int64) ([]Constraint, []string) {
	have := map[Set]bool{}
	for _, c := range dcs {
		if c.IsCardinality() {
			have[c.Y] = true
		}
	}
	out := append([]Constraint(nil), dcs...)
	var assumed []string
	for i, a := range s.Atoms {
		if !have[a.Vars] {
			out = append(out, Cardinality(a.Vars, n, i))
			assumed = append(assumed, a.Name)
		}
	}
	return out, assumed
}
