package panda

import (
	"reflect"
	"testing"
)

// TestFacadePreparedQuery: prepare-once/eval-many through the facade
// matches the one-shot Eval path, and repeated preparation is answered from
// the plan cache without LP work.
func TestFacadePreparedQuery(t *testing.T) {
	pl := NewPlanner(8)
	q := FourCycleQuery()
	ins := RandomInstance(3, &q.Schema, 200, 24)

	pq, err := pl.PrepareFor(q, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Mode() != ModeFull {
		t.Fatalf("full query planned as %v", pq.Mode())
	}
	if pq.Width() == nil || pq.Signature() == "" {
		t.Fatal("plan lacks width certificate or signature")
	}
	got, ok, stats, err := pq.Eval(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("prepared Eval returned no stats")
	}
	want, wantOK, err := Eval(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok != wantOK || !reflect.DeepEqual(got.SortedRows(), want.SortedRows()) {
		t.Fatalf("prepared facade result diverges: %d rows vs %d", got.Size(), want.Size())
	}

	solved := pl.Stats().LPSolves
	if _, err := pl.PrepareFor(q, ins, nil); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Hits != 1 || st.LPSolves != solved {
		t.Fatalf("re-preparation was not a free cache hit: %v", st)
	}

	// The explicit fhtw mode works through the facade too.
	pq2, err := pl.PrepareForMode(q, ins, nil, ModeFhtw)
	if err != nil {
		t.Fatal(err)
	}
	got2, _, _, err := pq2.Eval(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2.SortedRows(), want.SortedRows()) {
		t.Fatal("fhtw prepared facade result diverges")
	}
}

// TestFacadePrepareRule: rule planning is exposed and prints a proof
// sequence consistent with RuleBound.
func TestFacadePrepareRule(t *testing.T) {
	p := PathRule()
	var dcs []Constraint
	for i, a := range p.Atoms {
		dcs = append(dcs, Cardinality(a.Vars, 16, i))
	}
	rp, err := PrepareRule(p, dcs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RuleBound(p, dcs)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Bound.Cmp(want) != 0 {
		t.Fatalf("prepared rule bound %v ≠ RuleBound %v", rp.Bound, want)
	}
	if len(rp.Seq) == 0 {
		t.Fatal("prepared rule has no proof sequence")
	}
}

// TestFacadePreparedProjection: a proper projection query evaluates to the
// same rows through the prepared path as through Eval.
func TestFacadePreparedProjection(t *testing.T) {
	q := FourCycleQuery()
	q.Free = Vars(0, 2)
	ins := RandomInstance(17, &q.Schema, 80, 12)
	want, wantOK, err := Eval(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := NewPlanner(4).PrepareFor(q, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _, err := pq.Eval(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok != wantOK || !reflect.DeepEqual(got.SortedRows(), want.SortedRows()) {
		t.Fatalf("prepared projection diverges: %d rows vs %d", got.Size(), want.Size())
	}
}

// TestFacadeDefaultPlanner: the package-level helpers share one cache.
func TestFacadeDefaultPlanner(t *testing.T) {
	q := TriangleQuery()
	ins := RandomInstance(8, &q.Schema, 50, 12)
	pq, err := PrepareFor(q, ins, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, _, err := pq.Eval(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, wantOK, err := Eval(q, ins, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok != wantOK {
		t.Fatalf("default-planner answer %v, want %v", ok, wantOK)
	}
}
