package panda

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"
	"math/big"

	"panda/internal/core"
	"panda/internal/plan"
)

// ModeRule marks a Result produced by a disjunctive datalog rule rather
// than one of the conjunctive plan modes.
const ModeRule = plan.ModeRule

// Result is the unified outcome of every DB query path — full, Boolean and
// projection conjunctive queries and disjunctive datalog rules all produce
// one shape, replacing the historical (*Relation, *RuleResult), (*Relation,
// bool, *Stats) and (*RuleResult) return zoos.
type Result struct {
	// Rel is the output relation over the query's free variables; nil for
	// Boolean queries and for disjunctive rules (see Tables).
	Rel *Relation
	// Columns names Rel's columns — the query's free variables in the
	// ascending variable order Rows uses; nil when the result has no
	// output relation. It is the stable header a serving layer (JSON, CSV)
	// pairs with Rows.
	Columns []string
	// OK answers non-emptiness in every case: the Boolean answer, |Rel| >
	// 0, or — for a rule — whether any target table is non-empty.
	OK bool
	// Width is the width certificate of the executed strategy in log₂
	// units: the polymatroid bound (ModeFull and rules), da-fhtw
	// (ModeFhtw) or da-subw (ModeSubw).
	Width *big.Rat
	// Mode is the strategy that produced the result (ModeRule for
	// disjunctive rules).
	Mode PlanMode
	// Tables holds the per-target model tables of the underlying PANDA
	// rule: every target for disjunctive rules, the raw (pre-semijoin)
	// full table for ModeFull, nil otherwise. Reading a table through
	// Rows/SortedRows materializes a decoded copy per call; iterate with
	// Relation.All / AllSorted to stream instead.
	Tables map[Set]*Relation
	// Bound is the polymatroid bound of the executed rule in log₂ units
	// (ModeFull and rules), nil otherwise.
	Bound *big.Rat
	// Stats accumulates the engine work across all executed rules.
	Stats *Stats
	// Signature is the short hex digest of the plan's canonical,
	// renaming-invariant signature — the query's *shape* identity: two
	// queries that differ only by variable renaming share one signature,
	// and per-shape telemetry (pandad's shape table, slow-query log) keys
	// on it. Empty for disjunctive rules, which are planned per rule
	// rather than cached by signature.
	Signature string
	// Timings attributes wall-clock time to the stages of this execution
	// (prepare-wait, per-proof-step-kind engine time, rule fan-out,
	// merge); nil unless WithStageTimings was set. Unlike Stats, timings
	// vary run to run and are excluded from the deterministic-merge
	// guarantee.
	Timings *Timings
}

// Timings attributes wall-clock time to the stages of one execution; see
// WithStageTimings.
type Timings = core.Timings

// SignatureDigest condenses a canonical plan-signature key (PlanInfo.Key,
// plan cache keys) into the short hex digest used everywhere a shape is
// named: Result.Signature, the /v1/shapes table, slow-query log lines. An
// empty key (disjunctive rules) digests to "".
func SignatureDigest(key string) string {
	if key == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:6])
}

// Rows returns the output tuples in deterministic sorted order; nil when
// the result has no output relation. Each call decodes and materializes a
// fresh copy of the whole row set (as does Tables via Relation.Rows) —
// streaming consumers should prefer Iter.
func (r *Result) Rows() [][]Value {
	if r.Rel == nil {
		return nil
	}
	return r.Rel.SortedRows()
}

// Iter iterates the output tuples in the same deterministic sorted order as
// Rows without materializing them: rows decode out of the columnar storage
// into one reused buffer, so the yielded slice is valid only for the body
// of the loop — copy it if it must be retained. The sequence is empty when
// the result has no output relation.
func (r *Result) Iter() iter.Seq[[]Value] {
	if r.Rel == nil {
		return func(func([]Value) bool) {}
	}
	return r.Rel.AllSorted()
}

// Size returns |Rel|, or 0 when the result has no output relation.
func (r *Result) Size() int {
	if r.Rel == nil {
		return 0
	}
	return r.Rel.Size()
}

func (r *Result) String() string {
	switch {
	case r.Mode == ModeRule:
		return fmt.Sprintf("rule result: %d tables, bound 2^%s", len(r.Tables), r.Bound.FloatString(4))
	case r.Rel == nil:
		return fmt.Sprintf("boolean result: %v (%s)", r.OK, r.Mode)
	default:
		return fmt.Sprintf("%d tuples (%s)", r.Rel.Size(), r.Mode)
	}
}
