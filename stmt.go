package panda

import (
	"context"
	"fmt"
	"math/big"
	"sync"

	"panda/internal/core"
	"panda/internal/plan"
	"panda/internal/query"
)

// Stmt is a prepared statement: a parsed query or rule whose catalog
// bindings (relation names and arities) have been validated against the
// session. Running it plans through the session's cached Planner — the
// first Query pays the LP solves, every later one (from this Stmt or any
// other statement with the same canonical signature) executes with zero
// planning work.
//
// A Stmt is safe for concurrent Query calls. It memoizes the bound (and
// constraint-checked) instance against the catalog's per-relation ticks, so
// repeated queries over an unchanged catalog skip the snapshot copy as
// well as the planning work — and, because execution over an identical
// read-only snapshot is deterministic, it memoizes the Result itself under
// the same key: steady-state traffic on an unchanged catalog streams a
// cached result without re-running the engine. Any mutation to a referenced
// relation moves its tick and invalidates both memos. A memoized Result is
// returned as-is, including Timings: a memo hit reports the stage timings
// of the execution that produced the result (timings are already excluded
// from the determinism guarantee, and a hit runs no stages of its own).
type Stmt struct {
	db  *DB
	src string
	res *query.ParseResult
	cfg config

	mu       sync.Mutex
	boundIns *Instance
	boundVer uint64
	memoRes  *Result
	memoVer  uint64
	memoCfg  config
	memoOK   bool
}

// Prepare parses src (the textual query language of internal/query) and
// validates every body atom against the catalog, failing early with
// ErrUnknownRelation or ErrArity. Options captured here become the
// statement's defaults; Stmt.Query may override them per call.
func (db *DB) Prepare(src string, opts ...Option) (*Stmt, error) {
	res, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if res.Conj == nil {
		if err := rejectExplicitMode(opts); err != nil {
			return nil, err
		}
	}
	cfg := db.cfg(opts)
	s := &res.Rule.Schema
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	for i, a := range s.Atoms {
		t, ok := db.catalog[a.Name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, a.Name)
		}
		if got, want := t.Attrs().Card(), s.Arity(i); got != want {
			return nil, fmt.Errorf("%w: relation %s has arity %d, atom %s needs %d",
				ErrArity, a.Name, got, a.Name, want)
		}
	}
	return &Stmt{db: db, src: src, res: res, cfg: cfg}, nil
}

// QueryContext binds the current catalog contents to the statement's
// schema, verifies the declared constraints against the data, and runs the
// query under ctx: cache-hit planning (via the session Planner) plus
// execution for conjunctive queries, PANDA for disjunctive rules. The
// Result shape is the same in every case. A cancelled or expired context
// aborts the run promptly with ctx.Err(); the engine checks cancellation
// between proof steps and between rule executions.
func (st *Stmt) QueryContext(ctx context.Context, opts ...Option) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if st.res.Conj == nil {
		if err := rejectExplicitMode(opts); err != nil {
			return nil, err
		}
	}
	cfg := st.cfg
	for _, o := range opts {
		o(&cfg)
	}
	ins, ver, err := st.bind()
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	if st.memoOK && st.memoVer == ver && st.memoCfg == cfg {
		res := st.memoRes
		st.mu.Unlock()
		return res, nil
	}
	st.mu.Unlock()
	var res *Result
	if st.res.Conj != nil {
		res, err = st.db.evalConjunctive(ctx, st.res.Conj, ins, st.res.Constraints, cfg)
	} else {
		res, err = st.db.evalRule(ctx, st.res.Rule, ins, st.res.Constraints, cfg)
	}
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	// Guard against a concurrent re-bind having moved the statement to a
	// newer snapshot: only memoize the result of the tick we bound.
	if st.boundVer == ver {
		st.memoRes, st.memoVer, st.memoCfg, st.memoOK = res, ver, cfg, true
	}
	st.mu.Unlock()
	return res, nil
}

// Query is QueryContext under context.Background().
func (st *Stmt) Query(opts ...Option) (*Result, error) {
	return st.QueryContext(context.Background(), opts...)
}

// bind returns the statement's schema bound to the current catalog,
// reusing the previous snapshot (already constraint-checked) while every
// relation the statement references is unchanged — mutations to unrelated
// relations no longer invalidate it (per-relation tick granularity). Bound
// instances are read-only during execution, so one snapshot may serve
// concurrent Query calls. The second return is the schema tick the
// snapshot reflects — the key the result memo pairs with.
func (st *Stmt) bind() (*Instance, uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ver, err := st.db.schemaTick(&st.res.Rule.Schema)
	if err != nil {
		return nil, 0, err
	}
	if st.boundIns != nil && st.boundVer == ver {
		return st.boundIns, ver, nil
	}
	s := &st.res.Rule.Schema
	ins, ver, err := st.db.bindInstance(s)
	if err != nil {
		return nil, 0, err
	}
	if err := ins.Check(s, st.res.Constraints); err != nil {
		return nil, 0, err
	}
	st.boundIns, st.boundVer = ins, ver
	return ins, ver, nil
}

// rejectExplicitMode fails with ErrNotConjunctive when the per-call
// options force a plan mode on a disjunctive rule. Only an explicit
// WithMode in opts counts: a session-wide WithMode default set at Open
// applies to the conjunctive queries it can apply to and is ignored for
// rules, as WithMode documents.
func rejectExplicitMode(opts []Option) error {
	var per config
	for _, o := range opts {
		o(&per)
	}
	if per.mode != ModeAuto {
		return fmt.Errorf("%w: WithMode applies to conjunctive queries", ErrNotConjunctive)
	}
	return nil
}

// PlanInfo summarizes the planning outcome of a statement: the strategy
// the planner committed to and its exact width certificate, without any
// execution work. It is the dry-run shape a query server returns from an
// explain endpoint.
type PlanInfo struct {
	// Mode is the committed strategy (ModeRule for disjunctive rules).
	Mode PlanMode
	// Width is the exact width certificate in log₂ units: the polymatroid
	// bound (ModeFull and rules), da-fhtw (ModeFhtw) or da-subw (ModeSubw).
	Width *big.Rat
	// Key is the canonical plan-cache signature; empty for disjunctive
	// rules, which are planned per rule rather than cached by signature.
	Key string
	// Digest is SignatureDigest(Key): the short hex shape identity that
	// Result.Signature and the server's per-shape telemetry key on; empty
	// for disjunctive rules.
	Digest string
}

// ExplainContext runs only the planning phase of the statement against the
// current catalog — cache-hit planning for conjunctive queries (sharing the
// session Planner, so an Explain warms the cache for later queries), the
// polymatroid-bound LP for disjunctive rules — and reports the committed
// mode and width certificate without executing anything. The instance
// cardinalities the certificate depends on are snapshotted from the
// catalog, exactly as QueryContext would see them.
func (st *Stmt) ExplainContext(ctx context.Context, opts ...Option) (*PlanInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if st.res.Conj == nil {
		if err := rejectExplicitMode(opts); err != nil {
			return nil, err
		}
	}
	cfg := st.cfg
	for _, o := range opts {
		o(&cfg)
	}
	ins, _, err := st.bind()
	if err != nil {
		return nil, err
	}
	if q := st.res.Conj; q != nil {
		p, err := st.db.prepareConjunctive(ctx, q, ins, st.res.Constraints, cfg)
		if err != nil {
			return nil, err
		}
		return &PlanInfo{Mode: p.Mode, Width: p.Width, Key: p.Key, Digest: SignatureDigest(p.Key)}, nil
	}
	r := st.res.Rule
	pr, _, err := plan.PrepareRuleContext(ctx, &r.Schema, core.CompleteConstraints(&r.Schema, ins, st.res.Constraints), r.Targets)
	if err != nil {
		return nil, err
	}
	return &PlanInfo{Mode: ModeRule, Width: pr.Bound}, nil
}

// Source returns the statement's query text.
func (st *Stmt) Source() string { return st.src }

// IsRule reports whether the statement is a disjunctive datalog rule
// (multi-target head) rather than a conjunctive query.
func (st *Stmt) IsRule() bool { return st.res.Conj == nil }

// Constraints returns the degree constraints declared in the query text.
func (st *Stmt) Constraints() []Constraint { return st.res.Constraints }

// Schema returns the parsed schema (variable names, atoms).
func (st *Stmt) Schema() *Schema { return &st.res.Rule.Schema }

// Close releases the statement. It exists for database/sql symmetry; a
// Stmt holds no resources beyond its parse tree.
func (st *Stmt) Close() error { return nil }
