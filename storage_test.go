package panda

import (
	"reflect"
	"testing"
)

// Tests for the interned columnar storage engine as seen through the
// facade: the streaming cursor API must agree byte for byte with the
// deprecated materializing accessors, and the statement-level result memo
// must key on the referenced relations' catalog ticks.

// TestResultIterMatchesRows: for every golden fixture × execution shape
// (sequential and partitioned), Result.Iter must yield exactly the tuples
// Result.Rows materializes, in the same deterministic sorted order. Iter
// reuses one decode buffer per step, so the test copies each yield — the
// documented contract.
func TestResultIterMatchesRows(t *testing.T) {
	for _, fx := range partitionFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			db := Open()
			defer db.Close()
			fx.load(t, db)
			for _, opts := range [][]Option{
				fx.opts,
				append([]Option{WithPartitions(3)}, fx.opts...),
			} {
				res, err := db.Query(fx.src, opts...)
				if err != nil {
					t.Fatal(err)
				}
				want := res.Rows()
				var got [][]Value
				for row := range res.Iter() {
					got = append(got, append([]Value(nil), row...))
				}
				if len(want) == 0 && len(got) == 0 {
					continue // Boolean fixture: no output relation
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("Iter yields %d rows, Rows materializes %d — or contents/order diverge", len(got), len(want))
				}
			}
		})
	}
}

// TestStmtResultMemo pins the statement-level result memo: repeated
// queries over an unchanged catalog return the identical cached Result; a
// mutation to an unrelated relation leaves the memo intact; a mutation to
// a referenced relation invalidates it and the re-executed result reflects
// the new data. Options are part of the memo key, so a run with different
// options never serves another configuration's cache entry.
func TestStmtResultMemo(t *testing.T) {
	db := Open()
	defer db.Close()
	for name, arity := range map[string]int{"R": 2, "S": 2, "T": 2, "U": 2} {
		if err := db.CreateRelation(name, arity); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range [][]Value{{1, 2}, {2, 3}} {
		for _, name := range []string{"R", "S"} {
			if err := db.Insert(name, row); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Insert("T", []Value{1, 3}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`Q(A,B,C) :- R(A,B), S(B,C), T(A,C).`)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("repeat query over an unchanged catalog re-executed instead of serving the memoized result")
	}
	// A different option set must not be served from the other entry's memo.
	r3, err := st.Query(WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Fatal("a traced run was served the untraced memo entry")
	}
	// Unrelated mutation: per-relation tick granularity keeps the memo.
	if err := db.Insert("U", []Value{9, 9}); err != nil {
		t.Fatal(err)
	}
	r4, err := st.Query(WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if r4 != r3 {
		t.Fatal("insert into an unreferenced relation invalidated the result memo")
	}
	// Referenced mutation: the memo must drop and the new result must see
	// the new tuple.
	if err := db.Insert("T", []Value{2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("S", []Value{3, 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{2, 3}); err != nil {
		t.Fatal(err)
	}
	r5, err := st.Query(WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if r5 == r4 {
		t.Fatal("insert into a referenced relation did not invalidate the result memo")
	}
	if !reflect.DeepEqual(r5.Rows(), [][]Value{{1, 2, 3}, {2, 3, 1}}) {
		t.Fatalf("re-executed result is stale: %v", r5.Rows())
	}
	// Duplicate-only insert: contents unchanged, tick mark unchanged — the
	// memo survives (the Stamp no-op contract).
	if err := db.Insert("T", []Value{2, 1}); err != nil {
		t.Fatal(err)
	}
	r6, err := st.Query(WithTrace(true))
	if err != nil {
		t.Fatal(err)
	}
	if r6 != r5 {
		t.Fatal("duplicate-only insert invalidated the result memo")
	}
}
