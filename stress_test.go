package panda

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestDBStressMixedCatalogTraffic hammers one session with the full mix a
// query server generates — Insert, QueryContext (both ad-hoc and through a
// shared prepared statement), DropRelation/CreateRelation churn and
// PlannerStats polling — from many goroutines. Run under -race in CI.
//
// The correctness assertions target statement staleness:
//
//   - R only ever grows during the run, so every successful query must see
//     a monotonically non-decreasing row count (a stale snapshot served
//     after a newer one would shrink), and only rows that were actually
//     inserted.
//   - After the run, the same shared statement must reflect the final
//     catalog exactly — not a snapshot cached before the last mutation.
//   - After R is dropped, the statement must fail with ErrUnknownRelation
//     rather than answer from its stale bound instance.
func TestDBStressMixedCatalogTraffic(t *testing.T) {
	const (
		inserters  = 2
		queriers   = 3
		churners   = 2
		iterations = 12
	)
	db := Open(WithPlannerCapacity(64))
	defer db.Close()
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{0, 0}); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("Q(A,B) :- R(A,B).")
	if err != nil {
		t.Fatal(err)
	}

	// inserted(g, i) is goroutine g's i-th row; the universe of legal rows
	// is closed under it, so queriers can validate every tuple they see.
	inserted := func(g, i int) []Value { return []Value{Value(g + 1), Value(i)} }
	legal := func(row []Value) bool {
		if len(row) != 2 {
			return false
		}
		if row[0] == 0 && row[1] == 0 {
			return true
		}
		g, i := int(row[0])-1, int(row[1])
		return g >= 0 && g < inserters && i >= 0 && i < iterations
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, inserters+queriers+churners+1)
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if err := db.Insert("R", inserted(g, i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lastSize := 0
			for i := 0; i < iterations; i++ {
				var res *Result
				var err error
				if g%2 == 0 {
					res, err = stmt.QueryContext(ctx)
				} else {
					res, err = db.QueryContext(ctx, "Q(A,B) :- R(A,B).")
				}
				if err != nil {
					errs <- err
					return
				}
				if res.Size() < lastSize {
					errs <- fmt.Errorf("stale snapshot: size shrank %d -> %d", lastSize, res.Size())
					return
				}
				lastSize = res.Size()
				for _, row := range res.Rows() {
					if !legal(row) {
						errs <- fmt.Errorf("query returned a row nobody inserted: %v", row)
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("W%d", g)
			for i := 0; i < iterations; i++ {
				if err := db.CreateRelation(name, 2); err != nil {
					errs <- err
					return
				}
				if err := db.Insert(name, []Value{Value(i), Value(i)}); err != nil {
					errs <- err
					return
				}
				if err := db.DropRelation(name); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last PlannerStats
		for i := 0; i < iterations*2; i++ {
			st := db.PlannerStats()
			if st.Hits < last.Hits || st.Misses < last.Misses || st.LPSolves < last.LPSolves {
				errs <- fmt.Errorf("planner counters went backwards: %v then %v", last, st)
				return
			}
			last = st
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The shared statement must reflect the final catalog exactly.
	want := [][]Value{{0, 0}}
	for g := 0; g < inserters; g++ {
		for i := 0; i < iterations; i++ {
			want = append(want, inserted(g, i))
		}
	}
	res, err := stmt.QueryContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows()
	sortRows(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("statement served a stale result after mutation: %d rows, want %d", len(got), len(want))
	}

	// Churned relations are gone, R is intact.
	infos, err := db.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "R" || infos[0].Size != len(want) {
		t.Fatalf("catalog after churn: %+v", infos)
	}

	// Dropping R must invalidate the statement, not leave it answering
	// from its cached snapshot.
	if err := db.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.QueryContext(ctx); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("statement survived the drop: %v", err)
	}
	// Recreating R with a different arity must surface ErrArity, not bind
	// the old shape.
	if err := db.CreateRelation("R", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.QueryContext(ctx); !errors.Is(err, ErrArity) {
		t.Fatalf("statement ignored the arity change: %v", err)
	}
}

// sortRows orders rows lexicographically, matching Result.Rows.
func sortRows(rows [][]Value) {
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			if lessRow(rows[j], rows[i]) {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
}

func lessRow(a, b []Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
