package panda

import (
	"context"
	"math/big"
	"sync"

	"panda/internal/bitset"
	"panda/internal/core"
	"panda/internal/incr"
	"panda/internal/plan"
	"panda/internal/query"
	"panda/internal/relation"
)

// Standing queries: a Watch owns a materialized result for one statement
// and keeps it current as the catalog mutates, pushing row-deltas to a
// subscription channel. Maintenance is semi-naive (internal/incr): the plan
// is prepared once when the watch opens and pinned — every maintenance
// round executes that same plan over per-atom insert deltas with zero
// planning work, so a server full of hot watches performs no LP solves
// after warm-up. Insert-only growth is maintained incrementally; a
// DropRelation or drop+recreate of a referenced relation falls back to a
// full re-execution and resets the materialization (emitted with Resync
// set). Disjunctive rules are not monotone under inserts — a new body
// tuple may shift which target covers existing tuples — so rule watches
// re-execute in full every round and every emission carries the complete
// model with Resync set.

// DefaultWatchQueue is the delta-channel capacity a watch opens with when
// WithWatchQueue is not given.
const DefaultWatchQueue = 64

// WithWatchQueue sizes a watch's bounded delta queue (the subscription
// channel capacity); n ≤ 0 selects DefaultWatchQueue. When a slow consumer
// lets the queue fill, the maintainer evicts the oldest undelivered delta
// and replaces its own emission with a resync carrying the complete
// current state — the stream stays bounded and a consumer that applies
// every received delta (honoring Resync) always converges to the true
// materialization.
func WithWatchQueue(n int) Option { return func(c *config) { c.watchQueue = n } }

// WithWatchFallback forces every maintenance round to a full re-execution
// of the pinned plan instead of a semi-naive delta round. Emissions keep
// delta semantics (newly added rows only), so a fallback watch and an
// incremental watch over the same traffic must emit identical streams —
// the parity harness the incremental path is tested against.
func WithWatchFallback(on bool) Option { return func(c *config) { c.watchFallback = on } }

// WatchDelta is one change notification on a watch's subscription channel.
type WatchDelta struct {
	// Tick is the catalog tick (max per-relation tick over the statement's
	// relations) the watch's materialization reflects after this delta.
	Tick uint64
	// Rows holds the newly added output tuples in sorted order — or, when
	// Resync is set, the complete current row set. Nil for Boolean queries
	// and rules.
	Rows [][]Value
	// OK is the result's non-emptiness after this delta.
	OK bool
	// Resync marks a full-state emission: the consumer must replace its
	// materialization with Rows (or Tables) instead of merging. Sent after
	// a drop/recreate of a referenced relation, on queue overflow, and on
	// every rule-watch round.
	Resync bool
	// Tables carries the complete model tables of a rule watch (always
	// with Resync set); nil for conjunctive watches.
	Tables map[Set]*Relation
}

// WatchStats counts a watch's maintenance activity.
type WatchStats struct {
	// IncrRounds counts semi-naive maintenance rounds.
	IncrRounds uint64
	// FullRounds counts full re-executions (rule rounds, fallback rounds,
	// structural resyncs).
	FullRounds uint64
	// Resyncs counts full-state emissions (structural, overflow, rule).
	Resyncs uint64
	// DeltasEmitted counts deliveries into the subscription channel.
	DeltasEmitted uint64
}

// Watch is a standing query: a live materialized result plus a
// subscription channel of row-deltas. Open one with DB.Watch or
// Stmt.Watch; Close tears the maintainer down and closes the channel.
// A Watch is safe for concurrent use.
type Watch struct {
	db   *DB
	st   *Stmt
	cfg  config
	p    *plan.Plan // pinned at open; nil for rule watches
	exec *core.Executor

	deltas  chan WatchDelta
	stop    chan struct{}
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc
	watchID uint64
	once    sync.Once

	columns []string

	// Maintainer-private state (only the loop goroutine touches these).
	ins        *query.Instance
	lastPtrs   map[string]*relation.Relation
	tickSeen   uint64
	needResync bool

	// Shared state, guarded by mu.
	mu     sync.Mutex
	mat    *relation.Relation
	ok     bool
	tables map[Set]*Relation
	bound  *big.Rat
	tick   uint64
	err    error
	stats  WatchStats
}

// Watch opens a standing query over src: Prepare plus Stmt.Watch in one
// call. The returned handle already holds the initial materialization (the
// snapshot); deltas arrive on Deltas as the catalog mutates.
func (db *DB) Watch(src string, opts ...Option) (*Watch, error) {
	st, err := db.Prepare(src, opts...)
	if err != nil {
		return nil, err
	}
	return st.Watch()
}

// Watch opens a standing query for the prepared statement. Planning runs
// once here (a cache hit for already-seen shapes) and the plan is pinned:
// maintenance never replans, so constraint values frozen at open govern
// the runtime bound — not correctness — for the watch's whole life.
func (st *Stmt) Watch(opts ...Option) (*Watch, error) {
	if st.res.Conj == nil {
		if err := rejectExplicitMode(opts); err != nil {
			return nil, err
		}
	}
	cfg := st.cfg
	for _, o := range opts {
		o(&cfg)
	}
	queue := cfg.watchQueue
	if queue <= 0 {
		queue = DefaultWatchQueue
	}
	// The pinned plan's 2^OBJ composition budget was certified against the
	// cardinalities at open; once the catalog outgrows them, the budget
	// check could truncate a maintenance execution into failure. Outputs
	// are budget-independent, so watches run with the budget disabled: the
	// runtime guarantee is pinned to the open-time constraints (exactly
	// what plan pinning means), correctness is not.
	cfg.core.DisableBudget = true

	// Register for mutation wakeups before snapshotting, so a mutation
	// landing between the snapshot and the loop start still pokes the
	// (buffered) wake channel and the first round catches it up.
	id, wake := st.db.registerWatcher()
	started := false
	defer func() {
		if !started {
			st.db.unregisterWatcher(id)
		}
	}()

	s := &st.res.Rule.Schema
	ins, tick, ptrs, err := st.db.watchBind(s)
	if err != nil {
		return nil, err
	}
	if err := ins.Check(s, st.res.Constraints); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	w := &Watch{
		db:       st.db,
		st:       st,
		cfg:      cfg,
		exec:     cfg.executor(),
		deltas:   make(chan WatchDelta, queue),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
		watchID:  id,
		ins:      ins,
		lastPtrs: ptrs,
		tickSeen: tick,
		tick:     tick,
	}
	if q := st.res.Conj; q != nil {
		p, err := st.db.prepareConjunctive(ctx, q, ins, st.res.Constraints, cfg)
		if err != nil {
			cancel()
			return nil, err
		}
		w.p = p
		for _, v := range p.Free.Vars() {
			w.columns = append(w.columns, q.VarLabel(bitset.Of(v)))
		}
		ex, err := w.exec.Execute(ctx, p, ins)
		if err != nil {
			cancel()
			return nil, err
		}
		out := projectFree(ex.Out, p.Free)
		w.ok = ex.NonEmpty
		if out != nil {
			w.ok = out.Size() > 0
			w.mat = out // executor output is freshly built; the watch owns it
		}
		w.bound = ex.Bound
	} else {
		res, err := w.exec.EvalDisjunctive(ctx, st.res.Rule, ins, st.res.Constraints)
		if err != nil {
			cancel()
			return nil, err
		}
		w.tables = res.Tables
		w.bound = res.Bound
		for _, t := range res.Tables {
			if t.Size() > 0 {
				w.ok = true
				break
			}
		}
	}
	started = true
	go w.loop(wake)
	return w, nil
}

// watchBind snapshots, under one read lock, everything a watch needs to
// start or resync: the bound instance, the schema tick it reflects, and
// the catalog relation pointers (a later pointer change is how the
// maintainer detects drop+recreate).
func (db *DB) watchBind(s *query.Schema) (*query.Instance, uint64, map[string]*relation.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, 0, nil, ErrClosed
	}
	ins, err := query.BindInstance(s, func(name string) (*relation.Relation, bool) {
		t, ok := db.catalog[name]
		return t, ok
	})
	if err != nil {
		return nil, 0, nil, err
	}
	ptrs := make(map[string]*relation.Relation, len(s.Atoms))
	for _, a := range s.Atoms {
		ptrs[a.Name] = db.catalog[a.Name]
	}
	return ins, db.schemaTickLocked(s), ptrs, nil
}

// Deltas is the subscription channel. It is closed when the watch
// terminates (Close, DB.Close, or a maintenance error — see Err).
func (w *Watch) Deltas() <-chan WatchDelta { return w.deltas }

// Result returns the current materialized result. The row data is copied,
// so the caller's Result stays stable while maintenance continues.
func (w *Watch) Result() *Result {
	res, _ := w.Snapshot()
	return res
}

// Snapshot returns the current materialized result together with the
// catalog tick it reflects; a consumer that applies every delta with
// Tick greater than the snapshot tick reconstructs the live state.
func (w *Watch) Snapshot() (*Result, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	res := &Result{OK: w.ok}
	if w.st.res.Conj == nil {
		res.Mode = ModeRule
		res.Tables = w.tables
		res.Width = w.bound
		res.Bound = w.bound
	} else {
		res.Mode = w.p.Mode
		res.Width = w.p.Width
		res.Signature = SignatureDigest(w.p.Key)
		res.Bound = w.bound
		if w.mat != nil {
			res.Rel = w.mat.Clone(w.mat.Name)
			res.Columns = w.columns
		}
	}
	return res, w.tick
}

// Tick reports the catalog tick the materialization currently reflects.
func (w *Watch) Tick() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tick
}

// Stats snapshots the watch's maintenance counters.
func (w *Watch) Stats() WatchStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Err reports why the watch terminated: nil after a clean Close (or
// while still running), ErrClosed when the session was closed underneath
// it, or the maintenance error that killed it. Meaningful once Deltas is
// closed.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the maintainer, waits for it to finish, and closes the
// delta channel. Closing twice is a no-op.
func (w *Watch) Close() error {
	w.once.Do(func() {
		close(w.stop)
		w.cancel()
	})
	<-w.done
	return nil
}

// ---- Maintainer ----

func (w *Watch) loop(wake chan struct{}) {
	defer func() {
		w.db.unregisterWatcher(w.watchID)
		close(w.deltas)
		close(w.done)
	}()
	for {
		select {
		case <-w.stop:
			return
		case <-wake:
			if !w.round() {
				return
			}
		}
	}
}

// fail records a terminal maintenance error — unless the watch is being
// closed, in which case the error is just the teardown echoing back.
func (w *Watch) fail(err error) {
	select {
	case <-w.stop:
		return
	default:
	}
	w.mu.Lock()
	w.err = err
	w.mu.Unlock()
}

// watchNameSnap is one referenced relation's state captured under the
// catalog read lock: the live pointer, and the rows stamped after the
// maintainer's last seen tick (decoded under the lock into a fresh copy —
// safe to read outside it).
type watchNameSnap struct {
	ptr   *relation.Relation
	rows  [][]Value
	arity int
}

type watchSnap struct {
	closed    bool
	missing   bool
	recreated bool
	tick      uint64
	names     map[string]watchNameSnap
}

func (w *Watch) snapshot() watchSnap {
	db := w.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return watchSnap{closed: true}
	}
	s := &w.st.res.Rule.Schema
	snap := watchSnap{names: make(map[string]watchNameSnap, len(s.Atoms))}
	for _, a := range s.Atoms {
		t, ok := db.catalog[a.Name]
		if !ok {
			snap.missing = true
			continue
		}
		if w.lastPtrs[a.Name] != t {
			snap.recreated = true
		}
		snap.names[a.Name] = watchNameSnap{ptr: t, rows: t.RowsSince(w.tickSeen), arity: t.Attrs().Card()}
		if tk := t.Tick(); tk > snap.tick {
			snap.tick = tk
		}
	}
	return snap
}

// round processes one wakeup; it returns false when the watch must
// terminate.
func (w *Watch) round() bool {
	snap := w.snapshot()
	if snap.closed {
		w.fail(ErrClosed)
		return false
	}
	if snap.missing {
		// A referenced relation is gone. Queries would fail now, but the
		// drop may be the first half of a drop+recreate reload: keep the
		// last materialization and resync when the catalog is whole again.
		w.needResync = true
		return true
	}
	if snap.recreated || w.needResync {
		return w.fullRound(true)
	}
	if snap.tick == w.tickSeen {
		return true // coalesced or spurious wakeup; nothing new
	}
	if w.st.res.Conj == nil || w.cfg.watchFallback {
		return w.fullRound(false)
	}
	return w.incrRound(snap)
}

// fullRound rebinds the catalog and re-executes from scratch: the pinned
// plan for conjunctive watches, PANDA for rules. structural marks a
// resync (drop/recreate recovery) — the emission replaces the consumer's
// state; a non-structural full round (fallback mode) keeps delta
// emission semantics.
func (w *Watch) fullRound(structural bool) bool {
	s := &w.st.res.Rule.Schema
	ins, tick, ptrs, err := w.db.watchBind(s)
	if err != nil {
		w.fail(err)
		return false
	}
	if err := ins.Check(s, w.st.res.Constraints); err != nil {
		w.fail(err)
		return false
	}

	if w.st.res.Conj == nil {
		res, err := w.exec.EvalDisjunctive(w.ctx, w.st.res.Rule, ins, w.st.res.Constraints)
		if err != nil {
			w.fail(err)
			return false
		}
		ok := false
		for _, t := range res.Tables {
			if t.Size() > 0 {
				ok = true
				break
			}
		}
		w.mu.Lock()
		w.tables, w.bound, w.ok, w.tick = res.Tables, res.Bound, ok, tick
		w.stats.FullRounds++
		w.stats.Resyncs++
		w.mu.Unlock()
		w.ins, w.lastPtrs, w.tickSeen, w.needResync = ins, ptrs, tick, false
		w.send(WatchDelta{Tick: tick, OK: ok, Resync: true, Tables: res.Tables})
		return true
	}

	ex, err := w.exec.Execute(w.ctx, w.p, ins)
	if err != nil {
		w.fail(err)
		return false
	}
	out := projectFree(ex.Out, w.p.Free)
	ok := ex.NonEmpty
	if out != nil {
		ok = out.Size() > 0
	}

	w.mu.Lock()
	prev := w.mat
	// Insert-only fallback rounds only ever add rows; anything vanishing
	// means the catalog changed shape underneath us — resync.
	if !structural && prev != nil && out != nil {
		for row := range prev.All() {
			if !out.Contains(row) {
				structural = true
				break
			}
		}
	}
	var added [][]Value
	if out != nil && !structural {
		for _, row := range out.SortedRows() {
			if prev == nil || !prev.Contains(row) {
				added = append(added, row)
			}
		}
	}
	okChanged := ok != w.ok
	w.mat, w.ok, w.bound, w.tick = out, ok, ex.Bound, tick
	w.stats.FullRounds++
	if structural {
		w.stats.Resyncs++
	}
	w.mu.Unlock()
	w.ins, w.lastPtrs, w.tickSeen, w.needResync = ins, ptrs, tick, false

	switch {
	case structural:
		d := WatchDelta{Tick: tick, OK: ok, Resync: true}
		if out != nil {
			d.Rows = out.SortedRows()
		}
		w.send(d)
	case len(added) > 0 || okChanged:
		w.send(WatchDelta{Tick: tick, Rows: added, OK: ok})
	}
	return true
}

// incrRound is the semi-naive path: bind only the delta rows, extend the
// maintained instance, execute the pinned plan per delta atom, and merge
// the genuinely new output rows into the materialization.
func (w *Watch) incrRound(snap watchSnap) bool {
	s := &w.st.res.Rule.Schema

	// A satisfied Boolean watch stays satisfied under inserts: skip the
	// execution entirely and just advance the tick.
	if w.p.Free == 0 {
		w.mu.Lock()
		satisfied := w.ok
		if satisfied {
			w.stats.IncrRounds++
		}
		w.mu.Unlock()
		if satisfied {
			w.advance(snap)
			return true
		}
	}

	deltaIns, err := query.BindInstanceRows(s, func(name string) ([][]Value, int, bool) {
		nd, ok := snap.names[name]
		if !ok {
			return nil, 0, false
		}
		return nd.rows, nd.arity, true
	})
	if err != nil {
		w.fail(err)
		return false
	}
	// Extend the maintained full instance first: semi-naive needs full
	// NEW extensions at the non-delta atoms.
	for i, d := range deltaIns.Relations {
		w.ins.Relations[i].InsertAll(d)
	}
	round, err := incr.Maintain(w.ctx, w.exec, w.p, s, w.ins, deltaIns.Relations)
	if err != nil {
		w.fail(err)
		return false
	}

	w.mu.Lock()
	var fresh *relation.Relation
	if round.Delta != nil {
		if w.mat == nil {
			w.mat = relation.New("watch", round.Delta.Attrs())
		}
		for row := range round.Delta.All() {
			if !w.mat.Contains(row) {
				w.mat.Insert(row)
				if fresh == nil {
					fresh = relation.New("Δwatch", round.Delta.Attrs())
				}
				fresh.Insert(row)
			}
		}
	}
	ok := w.ok || round.NonEmpty
	if w.mat != nil {
		ok = w.mat.Size() > 0
	}
	okChanged := ok != w.ok
	w.ok, w.tick = ok, snap.tick
	w.stats.IncrRounds++
	w.mu.Unlock()
	w.advance(snap)

	if fresh != nil || okChanged {
		d := WatchDelta{Tick: snap.tick, OK: ok}
		if fresh != nil {
			d.Rows = fresh.SortedRows()
		}
		w.send(d)
	}
	return true
}

// advance moves the maintainer's bookkeeping past a processed snapshot.
func (w *Watch) advance(snap watchSnap) {
	for name, nd := range snap.names {
		w.lastPtrs[name] = nd.ptr
	}
	w.tickSeen = snap.tick
	w.mu.Lock()
	if snap.tick > w.tick {
		w.tick = snap.tick
	}
	w.mu.Unlock()
}

// send delivers a delta with bounded-queue overflow semantics: when the
// channel is full, the oldest undelivered delta is evicted and the
// emission is upgraded to a resync carrying the complete current state,
// so a consumer never observes a gap it cannot recover from. The
// maintainer is the only sender, so one eviction always frees a slot.
func (w *Watch) send(d WatchDelta) {
	for {
		select {
		case w.deltas <- d:
			w.mu.Lock()
			w.stats.DeltasEmitted++
			w.mu.Unlock()
			return
		default:
		}
		select {
		case <-w.deltas:
		default:
		}
		if !d.Resync {
			d = w.resyncDelta(d.Tick)
		}
		w.mu.Lock()
		w.stats.Resyncs++
		w.mu.Unlock()
	}
}

// resyncDelta builds a full-state emission from the current
// materialization.
func (w *Watch) resyncDelta(tick uint64) WatchDelta {
	w.mu.Lock()
	defer w.mu.Unlock()
	d := WatchDelta{Tick: tick, OK: w.ok, Resync: true}
	if w.st.res.Conj == nil {
		d.Tables = w.tables
	} else if w.mat != nil {
		d.Rows = w.mat.SortedRows()
	}
	return d
}
