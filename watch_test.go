package panda

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"panda/internal/query"
)

// createRelationsFor parses src and creates every body relation (empty)
// in the catalog, so a statement over src can be prepared immediately.
func createRelationsFor(t *testing.T, db *DB, src string) *query.ParseResult {
	t.Helper()
	res, err := query.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := &res.Rule.Schema
	for i, a := range s.Atoms {
		if err := db.CreateRelation(a.Name, s.Arity(i)); err != nil && !errors.Is(err, ErrRelationExists) {
			t.Fatal(err)
		}
	}
	return res
}

// waitTick polls until the watch's materialization reflects at least the
// given catalog tick (the maintainer runs asynchronously).
func waitTick(t *testing.T, w *Watch, tick uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for w.Tick() < tick {
		if time.Now().After(deadline) {
			t.Fatalf("watch stuck at tick %d, want ≥ %d (err: %v)", w.Tick(), tick, w.Err())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// insertRandomBatch inserts n random tuples into every relation the parsed
// schema references.
func insertRandomBatch(t *testing.T, db *DB, res *query.ParseResult, rng *rand.Rand, n, dom int) {
	t.Helper()
	s := &res.Rule.Schema
	seen := map[string]bool{}
	for i, a := range s.Atoms {
		if seen[a.Name] {
			continue
		}
		seen[a.Name] = true
		var rows [][]Value
		for k := 0; k < n; k++ {
			row := make([]Value, s.Arity(i))
			for j := range row {
				row[j] = Value(rng.Intn(dom))
			}
			rows = append(rows, row)
		}
		if err := db.Insert(a.Name, rows...); err != nil {
			t.Fatal(err)
		}
	}
}

// deltaApplier replays a watch's emission stream into a client-side
// materialization, exactly as a subscriber would: merge rows, replace on
// Resync.
type deltaApplier struct {
	rows   map[string]bool
	ok     bool
	tables map[Set]*Relation
}

func newDeltaApplier(snapshot *Result) *deltaApplier {
	a := &deltaApplier{rows: map[string]bool{}, ok: snapshot.OK, tables: snapshot.Tables}
	for _, r := range snapshot.Rows() {
		a.rows[fmt.Sprint(r)] = true
	}
	return a
}

func (a *deltaApplier) apply(d WatchDelta) {
	if d.Resync {
		a.rows = map[string]bool{}
		a.tables = d.Tables
	}
	for _, r := range d.Rows {
		a.rows[fmt.Sprint(r)] = true
	}
	a.ok = d.OK
}

func (a *deltaApplier) drain(w *Watch) {
	for {
		select {
		case d, ok := <-w.Deltas():
			if !ok {
				return
			}
			a.apply(d)
		default:
			return
		}
	}
}

// testWatchParity drives insert batches against a standing query and a
// fresh db.Query after every batch, asserting byte-identical rows — both
// for the watch's own materialization and for a client reconstructing the
// state from the delta stream.
func testWatchParity(t *testing.T, src string, seed int64, opts ...Option) {
	db := Open()
	defer db.Close()
	res := createRelationsFor(t, db, src)
	rng := rand.New(rand.NewSource(seed))
	insertRandomBatch(t, db, res, rng, 12, 5)

	w, err := db.Watch(src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	applier := newDeltaApplier(w.Result())

	for batch := 0; batch < 6; batch++ {
		insertRandomBatch(t, db, res, rng, 4+rng.Intn(6), 5)
		target, err := db.schemaTick(&res.Rule.Schema)
		if err != nil {
			t.Fatal(err)
		}
		waitTick(t, w, target)

		fresh, err := db.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		got := w.Result()
		if got.OK != fresh.OK {
			t.Fatalf("batch %d: watch OK=%v, fresh OK=%v", batch, got.OK, fresh.OK)
		}
		if !reflect.DeepEqual(got.Rows(), fresh.Rows()) {
			t.Fatalf("batch %d: watch rows %v\nfresh rows %v", batch, got.Rows(), fresh.Rows())
		}
		if !reflect.DeepEqual(got.Columns, fresh.Columns) {
			t.Fatalf("batch %d: watch columns %v, fresh %v", batch, got.Columns, fresh.Columns)
		}
		// Rule watches: the complete model tables must match too.
		if fresh.Mode == ModeRule {
			if len(got.Tables) != len(fresh.Tables) {
				t.Fatalf("batch %d: watch has %d tables, fresh %d", batch, len(got.Tables), len(fresh.Tables))
			}
			for b, ft := range fresh.Tables {
				gt := got.Tables[b]
				if gt == nil || !gt.Equal(ft) {
					t.Fatalf("batch %d: table %v diverges", batch, b)
				}
			}
		}

		// The delta stream must reconstruct the same state.
		applier.drain(w)
		if applier.ok != fresh.OK {
			t.Fatalf("batch %d: applied OK=%v, fresh OK=%v", batch, applier.ok, fresh.OK)
		}
		if fresh.Rel != nil {
			if len(applier.rows) != fresh.Size() {
				t.Fatalf("batch %d: applied %d rows, fresh %d", batch, len(applier.rows), fresh.Size())
			}
			for _, r := range fresh.Rows() {
				if !applier.rows[fmt.Sprint(r)] {
					t.Fatalf("batch %d: applied stream missing row %v", batch, r)
				}
			}
		}
	}
	if st := w.Stats(); st.IncrRounds+st.FullRounds == 0 {
		t.Fatal("watch performed no maintenance rounds")
	}
}

func TestWatchParityTriangle(t *testing.T) {
	testWatchParity(t, triangleSrc, 11)
}

func TestWatchParityTriangleFallback(t *testing.T) {
	testWatchParity(t, triangleSrc, 11, WithWatchFallback(true))
}

func TestWatchParityFourCycle(t *testing.T) {
	testWatchParity(t, fourCycleSrc, 12)
}

func TestWatchParityBooleanFourCycle(t *testing.T) {
	testWatchParity(t, booleanFourCycleSrc, 13)
}

func TestWatchParityPathRule(t *testing.T) {
	testWatchParity(t, pathRuleSrc, 14)
}

func TestWatchParityProjection(t *testing.T) {
	testWatchParity(t, `Q(A,B) :- R(A,B), S(B,C), T(A,C).`, 15)
}

// TestWatchZeroPlanningAfterOpen pins the pinned-plan guarantee: once the
// watch is open, maintenance rounds perform no planner work at all.
func TestWatchZeroPlanningAfterOpen(t *testing.T) {
	db := Open()
	defer db.Close()
	res := createRelationsFor(t, db, triangleSrc)
	rng := rand.New(rand.NewSource(21))
	insertRandomBatch(t, db, res, rng, 10, 5)

	w, err := db.Watch(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	before := db.PlannerStats()

	for batch := 0; batch < 5; batch++ {
		insertRandomBatch(t, db, res, rng, 5, 5)
		target, err := db.schemaTick(&res.Rule.Schema)
		if err != nil {
			t.Fatal(err)
		}
		waitTick(t, w, target)
	}
	after := db.PlannerStats()
	if after.LPSolves != before.LPSolves || after.Misses != before.Misses {
		t.Fatalf("maintenance planned: LP %d→%d, misses %d→%d",
			before.LPSolves, after.LPSolves, before.Misses, after.Misses)
	}
}

// TestWatchPerRelationInvalidation pins the satellite fix: a mutation to a
// relation a statement does not read must not invalidate its memoized
// snapshot, while a mutation to a referenced relation must.
func TestWatchPerRelationInvalidation(t *testing.T) {
	db := Open()
	defer db.Close()
	for _, n := range []string{"A", "B"} {
		if err := db.CreateRelation(n, 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("B", []Value{1, 2}); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`Q(X,Y) :- B(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	ins1, _, err := st.bind()
	if err != nil {
		t.Fatal(err)
	}
	// Unrelated mutation: the snapshot must be reused.
	if err := db.Insert("A", []Value{9, 9}); err != nil {
		t.Fatal(err)
	}
	ins2, _, err := st.bind()
	if err != nil {
		t.Fatal(err)
	}
	if ins1 != ins2 {
		t.Fatal("insert into unrelated relation invalidated the statement snapshot")
	}
	// Referenced mutation: the snapshot must be rebound.
	if err := db.Insert("B", []Value{3, 4}); err != nil {
		t.Fatal(err)
	}
	ins3, _, err := st.bind()
	if err != nil {
		t.Fatal(err)
	}
	if ins3 == ins2 {
		t.Fatal("insert into referenced relation did not invalidate the snapshot")
	}
	if got := ins3.Relations[0].Size(); got != 2 {
		t.Fatalf("rebound snapshot has %d rows, want 2", got)
	}
}

// TestWatchOverflowResync fills a 1-slot delta queue without consuming:
// the maintainer must evict and upgrade to a resync, and the consumer
// must find the complete state in the final emission.
func TestWatchOverflowResync(t *testing.T) {
	db := Open()
	defer db.Close()
	res := createRelationsFor(t, db, triangleSrc)
	seedTriangle := func(v Value) {
		for _, n := range []string{"R", "S", "T"} {
			if err := db.Insert(n, []Value{v, v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	seedTriangle(0)

	w, err := db.Watch(triangleSrc, WithWatchQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Each seed produces one output row and one emission; with a 1-slot
	// queue the later emissions must overflow into resyncs.
	for v := Value(1); v <= 4; v++ {
		seedTriangle(v)
		target, err := db.schemaTick(&res.Rule.Schema)
		if err != nil {
			t.Fatal(err)
		}
		waitTick(t, w, target)
	}
	if st := w.Stats(); st.Resyncs == 0 {
		t.Fatalf("no resyncs after overflow: %+v", st)
	}
	// Drain: the last emission must be a resync carrying the full state.
	var last WatchDelta
	got := 0
	for {
		select {
		case d := <-w.Deltas():
			last, got = d, got+1
			continue
		default:
		}
		break
	}
	if got == 0 {
		t.Fatal("no deltas queued")
	}
	if !last.Resync {
		t.Fatalf("last queued delta is not a resync: %+v", last)
	}
	fresh, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(last.Rows) != fresh.Size() {
		t.Fatalf("resync carries %d rows, catalog state has %d", len(last.Rows), fresh.Size())
	}
}

// TestWatchDropRecreateResync drops and recreates a referenced relation:
// the watch must survive, emit a resync, and converge to the new state.
func TestWatchDropRecreateResync(t *testing.T) {
	db := Open()
	defer db.Close()
	createRelationsFor(t, db, triangleSrc)
	for _, n := range []string{"R", "S", "T"} {
		if err := db.Insert(n, []Value{1, 1}, []Value{2, 2}); err != nil {
			t.Fatal(err)
		}
	}
	w, err := db.Watch(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if got := w.Result().Size(); got != 2 {
		t.Fatalf("initial materialization has %d rows, want 2", got)
	}

	if err := db.DropRelation("R"); err != nil {
		t.Fatal(err)
	}
	// While the relation is missing the watch idles on its last state.
	if err := db.CreateRelation("R", 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("R", []Value{2, 2}); err != nil {
		t.Fatal(err)
	}
	res, _ := query.Parse(triangleSrc)
	target, err := db.schemaTick(&res.Rule.Schema)
	if err != nil {
		t.Fatal(err)
	}
	waitTick(t, w, target)

	fresh, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Result().Rows(), fresh.Rows()) {
		t.Fatalf("after recreate: watch %v, fresh %v", w.Result().Rows(), fresh.Rows())
	}
	// The recovery must have been announced as a resync.
	sawResync := false
	for {
		select {
		case d := <-w.Deltas():
			if d.Resync {
				sawResync = true
			}
			continue
		default:
		}
		break
	}
	if !sawResync {
		t.Fatal("drop+recreate produced no resync emission")
	}
	if st := w.Stats(); st.Resyncs == 0 {
		t.Fatalf("stats recorded no resync: %+v", st)
	}
}

// TestWatchDBCloseTerminates closes the session under a live watch: the
// delta channel must close and Err must report ErrClosed.
func TestWatchDBCloseTerminates(t *testing.T) {
	db := Open()
	createRelationsFor(t, db, triangleSrc)
	w, err := db.Watch(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-w.Deltas():
		if open {
			t.Fatal("delta channel delivered instead of closing")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("delta channel did not close after DB.Close")
	}
	if !errors.Is(w.Err(), ErrClosed) {
		t.Fatalf("watch error = %v, want ErrClosed", w.Err())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchConcurrentStress hammers a watch with parallel inserters while
// a consumer applies the delta stream; run under -race in CI. After the
// dust settles the applied stream and the materialization must both equal
// a fresh full execution.
func TestWatchConcurrentStress(t *testing.T) {
	db := Open(WithParallelism(2))
	defer db.Close()
	res := createRelationsFor(t, db, triangleSrc)
	w, err := db.Watch(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	applier := newDeltaApplier(w.Result())
	var applyMu sync.Mutex
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for d := range w.Deltas() {
			applyMu.Lock()
			applier.apply(d)
			applyMu.Unlock()
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			names := []string{"R", "S", "T"}
			for i := 0; i < 40; i++ {
				n := names[rng.Intn(len(names))]
				row := []Value{Value(rng.Intn(6)), Value(rng.Intn(6))}
				if err := db.Insert(n, row); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	target, err := db.schemaTick(&res.Rule.Schema)
	if err != nil {
		t.Fatal(err)
	}
	waitTick(t, w, target)
	fresh, err := db.Query(triangleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Result().Rows(), fresh.Rows()) {
		t.Fatalf("stress: watch %d rows, fresh %d rows", w.Result().Size(), fresh.Size())
	}

	w.Close()
	<-consumerDone
	applyMu.Lock()
	defer applyMu.Unlock()
	if len(applier.rows) != fresh.Size() {
		t.Fatalf("stress: applied stream has %d rows, fresh %d", len(applier.rows), fresh.Size())
	}
	for _, r := range fresh.Rows() {
		if !applier.rows[fmt.Sprint(r)] {
			t.Fatalf("stress: applied stream missing %v", r)
		}
	}
}
