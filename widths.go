package panda

import (
	"math/big"

	"panda/internal/widths"
)

// WidthReport collects the width parameters of a query's hypergraph
// (Sections 2.1.3 and 7). Classic widths are in normalized units (edge
// bounds = 1); the Corollary 7.5 chain 1+tw ≥ ghtw ≥ fhtw ≥ subw ≥ adw
// always holds.
type WidthReport struct {
	Treewidth int
	GHTW      int
	FHTW      *big.Rat
	Subw      *big.Rat
	Adw       *big.Rat
}

// Widths computes the classic width hierarchy of the query.
func Widths(q *Query) (*WidthReport, error) {
	s, err := widths.Summarize(q.Hypergraph())
	if err != nil {
		return nil, err
	}
	return &WidthReport{
		Treewidth: s.TW,
		GHTW:      s.GHTW,
		FHTW:      s.FHTW,
		Subw:      s.Subw,
		Adw:       s.Adw,
	}, nil
}

// DaFhtw computes the degree-aware fractional hypertree width of the query
// under the given constraints (Definition 7.6), in log₂ units.
func DaFhtw(q *Query, dcs []Constraint) (*big.Rat, error) {
	fdcs, err := toFlowDCs(&q.Schema, dcs)
	if err != nil {
		return nil, err
	}
	return widths.DaFhtw(q.Hypergraph(), fdcs)
}

// DaSubw computes the degree-aware submodular width of the query under the
// given constraints (Definition 7.6), in log₂ units. PANDA's EvalSubw
// runtime exponent is governed by this value (Theorem 1.9).
func DaSubw(q *Query, dcs []Constraint) (*big.Rat, error) {
	fdcs, err := toFlowDCs(&q.Schema, dcs)
	if err != nil {
		return nil, err
	}
	return widths.DaSubw(q.Hypergraph(), fdcs)
}
